#!/usr/bin/env bash
# telemetry_smoke.sh — end-to-end smoke of the live observability
# export: run a short dense-city scenario with -telemetry under the
# race detector, probe /metrics and /trace over HTTP while the process
# is up, and validate both against the snapshot schema
# (trace.SnapshotRecord / the tracer dump) with jq.
#
# The probe loop retries until the first snapshot is published (the
# endpoints answer 503 before that), and -telemetry-hold keeps the
# endpoints alive after the simulation finishes so the probe always
# lands even on slow runners.
#
# Usage: scripts/telemetry_smoke.sh [addr]   (default 127.0.0.1:18080)
set -euo pipefail

cd "$(dirname "$0")/.."

addr=${1:-127.0.0.1:18080}

command -v jq >/dev/null || { echo "telemetry-smoke: jq required"; exit 1; }
command -v curl >/dev/null || { echo "telemetry-smoke: curl required"; exit 1; }

bin=$(mktemp -t whitefi-sim-race.XXXXXX)
go build -race -o "$bin" ./cmd/whitefi-sim

"$bin" -dense 20 -traffic mixed -duration 10s -seed 3 \
    -telemetry "$addr" -telemetry-hold 30s -json >/dev/null &
pid=$!
trap 'kill "$pid" 2>/dev/null || true; rm -f "$bin"' EXIT

# Probe until the first snapshot is published.
metrics=""
for _ in $(seq 1 120); do
    if metrics=$(curl -sf "http://$addr/metrics" 2>/dev/null) && [ -n "$metrics" ]; then
        break
    fi
    sleep 0.5
done
[ -n "$metrics" ] || { echo "telemetry-smoke: /metrics never answered"; exit 1; }
trace=$(curl -sf "http://$addr/trace")

echo "$metrics" | jq -e '
    .event == "snapshot"
    and (.t_ms | type == "number")
    and (.counters | type == "object")
    and (.gauges | type == "object")
    and (.counters | has("engine.dispatched"))
    and (.counters | has("air.launches"))
    and (.counters | has("mac.tx_data"))
    and (.counters | has("traffic.generated"))
' >/dev/null || { echo "telemetry-smoke: /metrics failed schema check:"; echo "$metrics"; exit 1; }

echo "$trace" | jq -e '
    .event == "trace"
    and (.dropped | type == "number")
    and (.spans | type == "array")
' >/dev/null || { echo "telemetry-smoke: /trace failed schema check:"; echo "$trace"; exit 1; }

kill "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
trap 'rm -f "$bin"' EXIT

echo "telemetry-smoke: PASS ($(echo "$metrics" | jq '.counters | length') counters, $(echo "$trace" | jq '.spans | length') spans)"
