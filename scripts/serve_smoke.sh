#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke of the simulation server: start
# whitefi-sim -serve (race detector on), submit a dense-city scenario
# over HTTP, stream its snapshot JSONL, then pause a second run
# mid-flight, download its checkpoint, fork it with a what-if edit,
# resume it — and require the resumed and the checkpoint-restored runs
# to finish byte-identical (jq-diffed result, diffed stream) to an
# uninterrupted batch run of the same spec.
#
# Usage: scripts/serve_smoke.sh [addr]   (default 127.0.0.1:18090)
set -euo pipefail

cd "$(dirname "$0")/.."

addr=${1:-127.0.0.1:18090}
base="http://$addr"

command -v jq >/dev/null || { echo "serve-smoke: jq required"; exit 1; }
command -v curl >/dev/null || { echo "serve-smoke: curl required"; exit 1; }

work=$(mktemp -d -t serve-smoke.XXXXXX)
bin="$work/whitefi-sim"
go build -race -o "$bin" ./cmd/whitefi-sim

"$bin" -serve "$addr" -serve-workers 3 2>"$work/serve.log" &
pid=$!
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$work"' EXIT

# Wait for the API to answer.
up=""
for _ in $(seq 1 120); do
    if curl -sf "$base/api/kinds" >"$work/kinds.json" 2>/dev/null; then
        up=yes
        break
    fi
    sleep 0.5
done
[ -n "$up" ] || { echo "serve-smoke: API never answered"; cat "$work/serve.log"; exit 1; }
jq -e '.kinds | index("densecity")' "$work/kinds.json" >/dev/null \
    || { echo "serve-smoke: densecity kind missing:"; cat "$work/kinds.json"; exit 1; }

spec='{"aps":4,"seed":7,"measure_ms":8000,"telemetry_ms":1000}'

# Reference: the same spec run uninterrupted in batch mode.
"$bin" -scenario densecity -scenario-config "$spec" >"$work/ref.json" 2>/dev/null

# wait_done ID FILE — poll a run until done, saving its status JSON.
wait_done() {
    local id=$1 out=$2 state
    for _ in $(seq 1 600); do
        curl -sf "$base/api/runs/$id" >"$out"
        state=$(jq -r .state "$out")
        case "$state" in
            done) return 0 ;;
            failed) echo "serve-smoke: run $id failed:"; cat "$out"; exit 1 ;;
        esac
        sleep 0.5
    done
    echo "serve-smoke: run $id never finished"; cat "$out"; exit 1
}

# Run 1: submit and stream to completion; the streamed JSONL must be
# well formed and the result must match the batch reference.
r1=$(curl -sf -X POST "$base/api/runs" -d "{\"kind\":\"densecity\",\"spec\":$spec}" | jq -r .id)
curl -sf "$base/api/runs/$r1/stream" >"$work/r1.stream"
wait_done "$r1" "$work/r1.json"
jq -e '.event == "snapshot"' <(head -1 "$work/r1.stream") >/dev/null \
    || { echo "serve-smoke: stream is not snapshot JSONL:"; head -1 "$work/r1.stream"; exit 1; }
diff <(jq -S .result "$work/r1.json") <(jq -S . "$work/ref.json") \
    || { echo "serve-smoke: served result diverged from batch run"; exit 1; }

# Run 2: pause mid-flight, checkpoint, fork with an edit, resume.
r2=$(curl -sf -X POST "$base/api/runs" -d "{\"kind\":\"densecity\",\"spec\":$spec}" | jq -r .id)
for _ in $(seq 1 600); do
    at=$(curl -sf "$base/api/runs/$r2" | jq -r .at_ns)
    [ "$at" -gt 0 ] 2>/dev/null && break
    sleep 0.1
done
curl -sf -X POST "$base/api/runs/$r2/pause" >/dev/null
state=$(curl -sf "$base/api/runs/$r2" | jq -r .state)
[ "$state" = paused ] || { echo "serve-smoke: run $r2 is $state, not paused"; exit 1; }

curl -sf -X POST "$base/api/runs/$r2/checkpoint" >"$work/r2.ckpt"
jq -e -s '.[0].whitefi_checkpoint == 1' "$work/r2.ckpt" >/dev/null \
    || { echo "serve-smoke: checkpoint header malformed:"; head -1 "$work/r2.ckpt"; exit 1; }

# Restore the checkpoint as a new run: it replays run 2's history and
# must finish exactly like the uninterrupted reference.
r3=$(curl -sf -X POST "$base/api/restore" --data-binary @"$work/r2.ckpt" | jq -r .id)

# Fork run 2 with a what-if edit: two extra BSSs appear at the fork
# point, so the result must diverge from the reference.
r4=$(curl -sf -X POST "$base/api/runs/$r2/fork" \
    -d '{"edits":[{"op":"add-aps","n":2,"seed":11}]}' | jq -r .id)

curl -sf -X POST "$base/api/runs/$r2/resume" >/dev/null
curl -sf "$base/api/runs/$r2/stream" >"$work/r2.stream"
wait_done "$r2" "$work/r2.json"
wait_done "$r3" "$work/r3.json"
wait_done "$r4" "$work/r4.json"

diff <(jq -S .result "$work/r2.json") <(jq -S . "$work/ref.json") \
    || { echo "serve-smoke: resumed run diverged from uninterrupted batch run"; exit 1; }
diff <(jq -S .result "$work/r3.json") <(jq -S . "$work/ref.json") \
    || { echo "serve-smoke: restored run diverged from uninterrupted batch run"; exit 1; }
diff "$work/r2.stream" "$work/r1.stream" \
    || { echo "serve-smoke: resumed run's snapshot stream diverged"; exit 1; }
if diff <(jq -S .result "$work/r4.json") <(jq -S . "$work/ref.json") >/dev/null; then
    echo "serve-smoke: forked run identical to reference — the edit changed nothing"
    exit 1
fi

kill "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
trap 'rm -rf "$work"' EXIT

echo "serve-smoke: PASS (4 runs; resume + restore byte-identical to batch, fork diverged; $(wc -l <"$work/r1.stream") stream lines)"
