#!/usr/bin/env bash
# bench.sh — run the evaluation benchmarks and emit machine-readable
# JSON so the performance trajectory is tracked across PRs.
#
# Usage:
#   scripts/bench.sh [pattern] [benchtime]
#
#   pattern    go test -bench regexp      (default: .)
#   benchtime  go test -benchtime value   (default: 1x)
#
# Output: BENCH_<git-short-sha>.json in the repository root — one JSON
# object per line ("name", "iterations", "ns_per_op", plus
# "bytes_per_op"/"allocs_per_op" when -benchmem reports them), then a
# {"domain_metrics":{...}} line with the final observability snapshot
# counters of the instrumented reference scenarios (whitefi-bench
# -metrics; skipped if BENCH_SKIP_METRICS=1), followed by a trailing
# metadata object with the commit, date and host.
set -euo pipefail

cd "$(dirname "$0")/.."

pattern=${1:-.}
benchtime=${2:-1x}
sha=$(git rev-parse --short HEAD 2>/dev/null || echo nogit)
out="BENCH_${sha}.json"
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem ./... | tee "$raw"

awk -v commit="$sha" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^Benchmark/ {
    line = sprintf("{\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s", $1, $2, $3)
    for (i = 4; i <= NF; i++) {
        if ($(i) == "B/op")     line = line sprintf(",\"bytes_per_op\":%s", $(i-1))
        if ($(i) == "allocs/op") line = line sprintf(",\"allocs_per_op\":%s", $(i-1))
    }
    print line "}"
}
END {
    printf "{\"meta\":{\"commit\":\"%s\",\"date\":\"%s\",\"benchtime\":\"'"$benchtime"'\"}}\n", commit, date
}
' "$raw" >"$out"

# Fold the domain counters (collisions, drops, outages) of the
# instrumented reference scenarios in before the trailing meta object,
# so bench_trend.sh can diff behavior as well as performance.
if [ "${BENCH_SKIP_METRICS:-0}" != "1" ]; then
    domain=$(go run ./cmd/whitefi-bench -exp none -metrics)
    tmp=$(mktemp)
    head -n -1 "$out" >"$tmp"
    printf '%s\n' "$domain" >>"$tmp"
    tail -n 1 "$out" >>"$tmp"
    mv "$tmp" "$out"
fi

echo "wrote $out"
